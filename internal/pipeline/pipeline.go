// Package pipeline implements GraphTensor's service-wide tensor scheduler
// (§V-B): the preprocessing pipeline that splits neighbor sampling (S),
// graph reindexing (R), embedding lookup (K) and host→device transfer (T)
// into per-layer, per-data-type subtasks and executes them with maximum
// parallelism under their true dependencies:
//
//   - S subtasks chain hop-by-hop (S for hop t needs hop t-1's frontier),
//     with the algorithm part (A) parallelized across workers and the hash
//     table update part (H) serialized to relax lock contention (Fig 14c).
//   - R and K subtasks for hop t start as soon as S_t completes and run
//     concurrently with the sampling of later hops — they touch different
//     data types (subgraphs vs embeddings), so they share no locks.
//   - T subtasks wait on a barrier for the final S (device allocation needs
//     the total vertex count), then stream: each embedding chunk gathered
//     by K transfers as soon as it is ready, from page-locked buffers, in
//     a pipelined manner (Fig 14b).
//
// The package also provides the baseline disciplines the paper compares
// against: the fully serial chain, the multi-threaded-sampling variant,
// and a SALIENT-style pinned-memory overlap preprocessor.
package pipeline

import (
	"fmt"
	"runtime"
	"time"

	"graphtensor/internal/cache"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/metrics"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
	"graphtensor/internal/tensor"
)

// Config parameterizes the service-wide tensor scheduler.
type Config struct {
	Sampler sampling.Config
	Format  prep.Format
	// Pinned uses page-locked staging for T (GraphTensor always does).
	Pinned bool
	// ChunkVertices is the K→T pipelining granularity.
	ChunkVertices int
	// RelaxContention enables the A/H split and S/R serialization against
	// the hash table (Fig 14c). Disabling it reproduces the contended
	// discipline of Fig 14a.
	RelaxContention bool
	// HostOnly skips the T subtasks: batches stay in host staging memory
	// with no device buffers (see prep.Config.HostOnly — the data-parallel
	// DeviceGroup's discipline, where each device transfers its own
	// shards, and the serving engine's, where each replica pays the
	// miss-only scatter itself). K chunks still stream into the assembled
	// table as they land. A HostOnly scheduler never touches its device and
	// may be built with a nil one.
	HostOnly bool
	// Workers bounds the scheduler's concurrent subtasks (0 = GOMAXPROCS):
	// it is the size of the persistent subtask-engine worker set all
	// Prepare calls on the scheduler share.
	Workers int
	// Cache, when non-nil, is the PaGraph-style embedding cache the K and T
	// subtasks consult: resident vertices are gathered into the staging
	// table as usual (batch contents never depend on residency) but skip
	// the modeled host→device transfer, and the batch records its hit/miss
	// counts (see prep.Batch.CacheHits).
	Cache *cache.Cache
}

// DefaultConfig returns the scheduler configuration GraphTensor ships.
func DefaultConfig() Config {
	return Config{
		Sampler:         sampling.DefaultConfig(),
		Format:          prep.FormatCSRCSC,
		Pinned:          true,
		ChunkVertices:   512,
		RelaxContention: true,
	}
}

// Scheduler prepares training batches with pipelined preprocessing. The
// sampler is persistent (it owns the pooled per-hop worker scratch), the
// subtask engine is persistent (a parked worker set executing pooled R/K
// descriptors — see subtaskEngine), and the scheduler is safe for
// concurrent Prepare calls, each drawing its own pooled run state.
type Scheduler struct {
	cfg      Config
	full     *graph.CSR
	features *graph.EmbeddingTable
	labels   []int32
	dev      *gpusim.Device
	sampler  *sampling.Sampler
	engine   *subtaskEngine
}

// NewScheduler builds a scheduler over a dataset's full graph and features.
// dev may be nil for a HostOnly scheduler.
func NewScheduler(full *graph.CSR, features *graph.EmbeddingTable, labels []int32,
	dev *gpusim.Device, cfg Config) *Scheduler {
	if cfg.ChunkVertices <= 0 {
		cfg.ChunkVertices = 512
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if !cfg.RelaxContention {
		cfg.Sampler.Mode = sampling.ModeShared
	}
	return &Scheduler{cfg: cfg, full: full, features: features, labels: labels, dev: dev,
		sampler: sampling.New(full, cfg.Sampler), engine: newSubtaskEngine(cfg.Workers)}
}

// SetCache installs (or, with nil, removes) the embedding cache the K/T
// subtasks consult. Must not race a Prepare in flight.
func (s *Scheduler) SetCache(c *cache.Cache) { s.cfg.Cache = c }

// Close retires the scheduler's persistent subtask workers. Call it when a
// short-lived scheduler (e.g. a serving engine's) is done; no Prepare may
// be in flight or follow. Long-lived trainer schedulers never need it.
func (s *Scheduler) Close() { s.engine.close() }

// Prepare runs the pipelined preprocessing for one batch. The optional
// timeline receives progress events (Fig 20); pass nil to skip recording.
func (s *Scheduler) Prepare(batchDsts []graph.VID, tl *metrics.Timeline) (*prep.Batch, error) {
	return s.PrepareSlot(batchDsts, tl, nil)
}

// PrepareArena is Prepare with the batch's host embedding table drawn from
// a batch-scoped arena (nil falls back to plain allocation).
func (s *Scheduler) PrepareArena(batchDsts []graph.VID, tl *metrics.Timeline, arena *tensor.Arena) (*prep.Batch, error) {
	return s.prepare(batchDsts, tl, arena, nil)
}

// PrepareSlot is Prepare drawing the batch's storage from a prefetch-ring
// slot: the dense host buffers from the slot's arena, and the producer
// structures (sampler result, per-layer graphs, labels) from its structure
// pool — so steady-state preprocessing recycles everything it builds
// instead of reallocating it. A nil slot falls back to plain allocation.
func (s *Scheduler) PrepareSlot(batchDsts []graph.VID, tl *metrics.Timeline, slot *Slot) (*prep.Batch, error) {
	return s.prepare(batchDsts, tl, slot.TensorArena(), slot.StructPool())
}

func (s *Scheduler) prepare(batchDsts []graph.VID, tl *metrics.Timeline,
	arena *tensor.Arena, structs *prep.Structs) (*prep.Batch, error) {
	bd := metrics.NewBreakdown()
	L := s.cfg.Sampler.Layers
	dim := s.features.Dim

	// Per-prepare state comes from the engine's pool; the layer chain and
	// its retained structure buffers are sized here, on the driving
	// goroutine, before any R subtask spawns — afterwards each R subtask
	// touches only its own layer's entry and retained buffer.
	s.engine.start()
	r := s.engine.getRun(s, bd, tl, structs)
	structs.EnsureLayers(L)
	r.layers = structs.TakeLayerData(L)

	run := s.sampler.BeginReuse(batchDsts, structs.TakeSample())
	res := run.Result()
	r.table = res.Table

	// --- S chain: hop-by-hop sampling on the preparing goroutine; R and K
	// subtasks are handed to the persistent engine the moment their hop is
	// available and overlap the sampling of later hops. Driving S inline
	// costs no overlap: T cannot start before the final S anyway (§V-B —
	// device allocation needs the total vertex count), so the old per-batch
	// S goroutine and its hop-done barrier channels bought nothing.
	for t := 0; t < L; t++ {
		st := time.Now()
		hop := run.Step()
		bd.Add("sample", time.Since(st))
		r.record("sample", res.FrontierSizes[t+1], -1)

		// R_t: hop t (0-based) is processed by GNN layer L-t (1-based),
		// i.e. layers[L-1-t].
		r.spawnReindex(L-1-t, hop)

		// K_t: gather the embeddings of the vertices this hop added, in
		// pipeline chunks. Read-only view: the K chunks only index below
		// hi, which is already assigned, so later concurrent insertions
		// are harmless.
		lo := res.FrontierSizes[t]
		hi := res.FrontierSizes[t+1]
		if t == 0 {
			lo = 0 // include the batch vertices themselves
		}
		origs := res.Table.OrigSlice(0, res.Table.Len())
		for c := lo; c < hi; c += s.cfg.ChunkVertices {
			cHi := c + s.cfg.ChunkVertices
			if cHi > hi {
				cHi = hi
			}
			r.spawnLookup(origs, c, cHi)
		}
	}

	// --- T: every hop is sampled; allocate device memory and stream the
	// chunks (pinned) plus the graph structures while the K subtasks drain.
	nTotal := res.NumVertices()

	st := time.Now()
	embed := graph.NewEmbeddingTableArena(arena, nTotal, dim)
	var ebuf *gpusim.Buffer
	var pcie *gpusim.PCIe
	if !s.cfg.HostOnly {
		pcie = s.dev.PCIe()
		var err error
		ebuf, err = s.dev.Alloc(embed.Bytes(), "batch-embeddings")
		if err != nil {
			r.wg.Wait()
			r.releaseStaged()
			s.engine.putRun(r)
			return nil, err
		}
	}
	bd.Add("transfer", time.Since(st))

	// Stream chunks as they land; the K subtasks keep producing while we
	// transfer (Fig 14b overlap). A single throttle accrues the modeled
	// link time across chunks, so the scheduler only pays the aggregate
	// transfer latency once — and pays it while K keeps producing.
	// Cache-resident rows are already device-held: each chunk pays the
	// link for its misses only.
	var link prep.LinkThrottle
	transferred, cacheHits := 0, 0
	for transferred < nTotal {
		pending := r.takePending()
		if len(pending) == 0 {
			if r.failed() {
				break
			}
			runtime.Gosched()
			continue
		}
		for _, ch := range pending {
			st := time.Now()
			rows := ch.hi - ch.lo
			copy(embed.Data.Data[ch.lo*dim:ch.hi*dim], ch.data.Data[:rows*dim])
			if !s.cfg.HostOnly {
				link.Pay(pcie.TransferBytes(int64(rows-ch.hits)*int64(dim)*4, s.cfg.Pinned))
			}
			tensor.Put(ch.data)
			bd.Add("transfer", time.Since(st))
			transferred += rows
			cacheHits += ch.hits
			r.record("transfer", transferred, nTotal)
		}
	}

	r.wg.Wait()
	if err := r.takeErr(); err != nil {
		r.releaseStaged()
		ebuf.Free()
		s.engine.putRun(r)
		return nil, err
	}

	// Graph structures transfer after the R subtasks complete.
	st = time.Now()
	layers := r.layers
	var bufs []*gpusim.Buffer
	if !s.cfg.HostOnly {
		gBytes := prep.GraphBytes(layers)
		gbuf, err := s.dev.Alloc(gBytes, "batch-graphs")
		if err != nil {
			ebuf.Free()
			s.engine.putRun(r)
			return nil, err
		}
		link.Pay(pcie.TransferBytes(gBytes, s.cfg.Pinned))
		link.Flush()
		bufs = []*gpusim.Buffer{ebuf, gbuf}
	}
	bd.Add("transfer", time.Since(st))
	r.record("transfer", nTotal, nTotal)
	s.engine.putRun(r)

	batch := structs.TakeBatch()
	batch.Sample, batch.Layers, batch.Embed = res, layers, embed
	batch.Breakdown, batch.DeviceBuffers = bd, bufs
	if s.cfg.Cache != nil {
		batch.CacheHits, batch.CacheMisses = cacheHits, nTotal-cacheHits
	}
	if s.labels != nil {
		batch.Labels = structs.TakeLabels(len(res.Batch))
		for i, orig := range res.Batch {
			batch.Labels[i] = s.labels[orig]
		}
	}
	return batch, nil
}

// Serial runs the fully serialized baseline chain (S → R → K → T) used by
// the existing frameworks (Fig 12a). workers controls sampling threads: 1
// reproduces PyG's single-threaded sampler, GOMAXPROCS the multi-threaded
// variants.
func Serial(full *graph.CSR, features *graph.EmbeddingTable, labels []int32,
	dev *gpusim.Device, batchDsts []graph.VID, samplerCfg sampling.Config,
	format prep.Format, pinned bool) (*prep.Batch, error) {
	return SerialArena(full, features, labels, dev, batchDsts, samplerCfg, format, pinned, nil)
}

// SerialArena is Serial with the batch's host buffers drawn from a
// batch-scoped arena (nil falls back to plain allocation).
func SerialArena(full *graph.CSR, features *graph.EmbeddingTable, labels []int32,
	dev *gpusim.Device, batchDsts []graph.VID, samplerCfg sampling.Config,
	format prep.Format, pinned bool, arena *tensor.Arena) (*prep.Batch, error) {
	return SerialCfg(full, features, labels, dev, batchDsts, samplerCfg,
		prep.Config{Format: format, Pinned: pinned, Arena: arena})
}

// SerialCfg is the serial chain with a full prep.Config (arena, pinning,
// host-only staging).
func SerialCfg(full *graph.CSR, features *graph.EmbeddingTable, labels []int32,
	dev *gpusim.Device, batchDsts []graph.VID, samplerCfg sampling.Config,
	cfg prep.Config) (*prep.Batch, error) {
	sampler := sampling.New(full, samplerCfg)
	return prep.Serial(sampler, features, labels, dev, batchDsts, cfg)
}

// String describes the scheduler configuration.
func (s *Scheduler) String() string {
	return fmt.Sprintf("pipeline.Scheduler{layers=%d fanout=%d format=%v pinned=%v chunk=%d relaxed=%v}",
		s.cfg.Sampler.Layers, s.cfg.Sampler.Fanout, s.cfg.Format, s.cfg.Pinned, s.cfg.ChunkVertices, s.cfg.RelaxContention)
}
