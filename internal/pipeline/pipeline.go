// Package pipeline implements GraphTensor's service-wide tensor scheduler
// (§V-B): the preprocessing pipeline that splits neighbor sampling (S),
// graph reindexing (R), embedding lookup (K) and host→device transfer (T)
// into per-layer, per-data-type subtasks and executes them with maximum
// parallelism under their true dependencies:
//
//   - S subtasks chain hop-by-hop (S for hop t needs hop t-1's frontier),
//     with the algorithm part (A) parallelized across workers and the hash
//     table update part (H) serialized to relax lock contention (Fig 14c).
//   - R and K subtasks for hop t start as soon as S_t completes and run
//     concurrently with the sampling of later hops — they touch different
//     data types (subgraphs vs embeddings), so they share no locks.
//   - T subtasks wait on a barrier for the final S (device allocation needs
//     the total vertex count), then stream: each embedding chunk gathered
//     by K transfers as soon as it is ready, from page-locked buffers, in
//     a pipelined manner (Fig 14b).
//
// The package also provides the baseline disciplines the paper compares
// against: the fully serial chain, the multi-threaded-sampling variant,
// and a SALIENT-style pinned-memory overlap preprocessor.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/metrics"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
	"graphtensor/internal/tensor"
)

// Config parameterizes the service-wide tensor scheduler.
type Config struct {
	Sampler sampling.Config
	Format  prep.Format
	// Pinned uses page-locked staging for T (GraphTensor always does).
	Pinned bool
	// ChunkVertices is the K→T pipelining granularity.
	ChunkVertices int
	// RelaxContention enables the A/H split and S/R serialization against
	// the hash table (Fig 14c). Disabling it reproduces the contended
	// discipline of Fig 14a.
	RelaxContention bool
	// HostOnly skips the T subtasks: batches stay in host staging memory
	// with no device buffers (see prep.Config.HostOnly — the data-parallel
	// DeviceGroup's discipline, where each device transfers its own
	// shards). K chunks still stream into the assembled table as they land.
	HostOnly bool
	// Workers bounds the scheduler's concurrent subtasks (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns the scheduler configuration GraphTensor ships.
func DefaultConfig() Config {
	return Config{
		Sampler:         sampling.DefaultConfig(),
		Format:          prep.FormatCSRCSC,
		Pinned:          true,
		ChunkVertices:   512,
		RelaxContention: true,
	}
}

// Scheduler prepares training batches with pipelined preprocessing. The
// sampler is persistent (it owns the pooled per-hop worker scratch) and
// safe for concurrent Prepare calls, each drawing its own result.
type Scheduler struct {
	cfg      Config
	full     *graph.CSR
	features *graph.EmbeddingTable
	labels   []int32
	dev      *gpusim.Device
	sampler  *sampling.Sampler
}

// NewScheduler builds a scheduler over a dataset's full graph and features.
func NewScheduler(full *graph.CSR, features *graph.EmbeddingTable, labels []int32,
	dev *gpusim.Device, cfg Config) *Scheduler {
	if cfg.ChunkVertices <= 0 {
		cfg.ChunkVertices = 512
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if !cfg.RelaxContention {
		cfg.Sampler.Mode = sampling.ModeShared
	}
	return &Scheduler{cfg: cfg, full: full, features: features, labels: labels, dev: dev,
		sampler: sampling.New(full, cfg.Sampler)}
}

// Prepare runs the pipelined preprocessing for one batch. The optional
// timeline receives progress events (Fig 20); pass nil to skip recording.
func (s *Scheduler) Prepare(batchDsts []graph.VID, tl *metrics.Timeline) (*prep.Batch, error) {
	return s.PrepareSlot(batchDsts, tl, nil)
}

// PrepareArena is Prepare with the batch's host embedding table drawn from
// a batch-scoped arena (nil falls back to plain allocation).
func (s *Scheduler) PrepareArena(batchDsts []graph.VID, tl *metrics.Timeline, arena *tensor.Arena) (*prep.Batch, error) {
	return s.prepare(batchDsts, tl, arena, nil)
}

// PrepareSlot is Prepare drawing the batch's storage from a prefetch-ring
// slot: the dense host buffers from the slot's arena, and the producer
// structures (sampler result, per-layer graphs, labels) from its structure
// pool — so steady-state preprocessing recycles everything it builds
// instead of reallocating it. A nil slot falls back to plain allocation.
func (s *Scheduler) PrepareSlot(batchDsts []graph.VID, tl *metrics.Timeline, slot *Slot) (*prep.Batch, error) {
	return s.prepare(batchDsts, tl, slot.TensorArena(), slot.StructPool())
}

func (s *Scheduler) prepare(batchDsts []graph.VID, tl *metrics.Timeline,
	arena *tensor.Arena, structs *prep.Structs) (*prep.Batch, error) {
	bd := metrics.NewBreakdown()
	L := s.cfg.Sampler.Layers
	sampler := s.sampler

	// Shared state between subtasks. The layer chain and its retained
	// structure buffers are sized here, on the driving goroutine, before any
	// R subtask spawns; afterwards each R subtask touches only its own
	// layer's entry and retained buffer.
	structs.EnsureLayers(L)
	var (
		layers   = structs.TakeLayerData(L)
		chunksMu sync.Mutex
		chunks   []embedChunk
		errMu    sync.Mutex
		firstErr error
		setErr   = func(err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
	)

	// Dependency signals.
	hopDone := make([]chan struct{}, L) // S_t completion
	for i := range hopDone {
		hopDone[i] = make(chan struct{})
	}
	allSampled := hopDone[L-1] // the T barrier (§V-B: wait for the last S)

	run := sampler.BeginReuse(batchDsts, structs.TakeSample())
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.cfg.Workers)

	// --- S chain: hop-by-hop sampling on the scheduler goroutine; R and K
	// subtasks spawn the moment their hop is available.
	record := func(task string, done, total int) {
		if tl != nil {
			tl.Record(task, done, total)
		}
	}
	go func() {
		totalHops := L
		for t := 0; t < totalHops; t++ {
			t := t // capture per-iteration: the R subtask below outlives this iteration
			st := time.Now()
			hop := run.Step()
			bd.Add("sample", time.Since(st))
			record("sample", run.Result().FrontierSizes[t+1], -1)
			res := run.Result()

			// R_t: reindex + format build for the GNN layer this hop feeds.
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				st := time.Now()
				// Hop t (0-based) is processed by GNN layer L-t (1-based),
				// i.e. layers[L-1-t]; the layer's structures come from the
				// slot's retained buffer for that index (concurrent R
				// subtasks touch disjoint buffers).
				ld, err := structs.LayerInto(L-1-t, hop, res.Table, s.cfg.Format)
				if err != nil {
					setErr(err)
					return
				}
				layers[L-1-t] = ld
				bd.Add("reindex", time.Since(st))
				record("reindex", hop.NumSrc, -1)
			}()

			// K_t: gather the embeddings of the vertices this hop added,
			// in pipeline chunks.
			lo := res.FrontierSizes[t]
			hi := res.FrontierSizes[t+1]
			if t == 0 {
				lo = 0 // include the batch vertices themselves
			}
			// Read-only view: the K chunks only index below hi, which is
			// already assigned, so later concurrent insertions are harmless.
			origs := res.Table.OrigSlice(0, res.Table.Len())
			for c := lo; c < hi; c += s.cfg.ChunkVertices {
				cLo, cHi := c, c+s.cfg.ChunkVertices
				if cHi > hi {
					cHi = hi
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					st := time.Now()
					// Staging buffers come from the global tensor pool
					// (arena handles are single-goroutine; the pool is not)
					// and are returned as soon as their chunk streams.
					buf := &graph.EmbeddingTable{Dim: s.features.Dim, Data: tensor.Get(cHi-cLo, s.features.Dim)}
					for i := cLo; i < cHi; i++ {
						copy(buf.Data.Row(i-cLo), s.features.Row(origs[i]))
					}
					bd.Add("lookup", time.Since(st))
					record("lookup", cHi-cLo, -1)
					chunksMu.Lock()
					chunks = append(chunks, embedChunk{lo: cLo, hi: cHi, data: buf})
					chunksMu.Unlock()
				}()
			}
			close(hopDone[t])
		}
	}()

	// --- T: barrier on the final S, then allocate device memory and
	// stream the chunks (pinned) plus the graph structures.
	<-allSampled
	res := run.Result()
	nTotal := res.NumVertices()

	// releaseStaged returns unstreamed staging chunks to the tensor pool on
	// the failure paths. Call only after wg.Wait (no K producers left).
	releaseStaged := func() {
		chunksMu.Lock()
		pending := chunks
		chunks = nil
		chunksMu.Unlock()
		for _, ch := range pending {
			tensor.Put(ch.data.Data)
		}
	}

	st := time.Now()
	embed := graph.NewEmbeddingTableArena(arena, nTotal, s.features.Dim)
	var ebuf *gpusim.Buffer
	if !s.cfg.HostOnly {
		var err error
		ebuf, err = s.dev.Alloc(embed.Bytes(), "batch-embeddings")
		if err != nil {
			wg.Wait()
			releaseStaged()
			return nil, err
		}
	}
	bd.Add("transfer", time.Since(st))

	// Stream chunks as they land; the K subtasks keep producing while we
	// transfer (Fig 14b overlap). A single throttle accrues the modeled
	// link time across chunks, so the scheduler only pays the aggregate
	// transfer latency once — and pays it while K keeps producing.
	pcie := s.dev.PCIe()
	var link prep.LinkThrottle
	transferred := 0
	wantVertices := nTotal
	for transferred < wantVertices {
		chunksMu.Lock()
		pending := chunks
		chunks = nil
		chunksMu.Unlock()
		if len(pending) == 0 {
			errMu.Lock()
			failed := firstErr != nil
			errMu.Unlock()
			if failed {
				break
			}
			runtime.Gosched()
			continue
		}
		for _, ch := range pending {
			st := time.Now()
			dst := embed.Data.Data[ch.lo*s.features.Dim : ch.hi*s.features.Dim]
			if s.cfg.HostOnly {
				copy(dst, ch.data.Data.Data)
			} else {
				link.Pay(pcie.Transfer(dst, ch.data.Data.Data, s.cfg.Pinned))
			}
			tensor.Put(ch.data.Data)
			bd.Add("transfer", time.Since(st))
			transferred += ch.hi - ch.lo
			record("transfer", transferred, wantVertices)
		}
	}

	wg.Wait()
	if firstErr != nil {
		releaseStaged()
		ebuf.Free()
		return nil, firstErr
	}

	// Graph structures transfer after the R subtasks complete.
	st = time.Now()
	var bufs []*gpusim.Buffer
	if !s.cfg.HostOnly {
		gBytes := prep.GraphBytes(layers)
		gbuf, err := s.dev.Alloc(gBytes, "batch-graphs")
		if err != nil {
			ebuf.Free()
			return nil, err
		}
		link.Pay(pcie.TransferBytes(gBytes, s.cfg.Pinned))
		link.Flush()
		bufs = []*gpusim.Buffer{ebuf, gbuf}
	}
	bd.Add("transfer", time.Since(st))
	record("transfer", wantVertices, wantVertices)

	batch := structs.TakeBatch()
	batch.Sample, batch.Layers, batch.Embed = res, layers, embed
	batch.Breakdown, batch.DeviceBuffers = bd, bufs
	if s.labels != nil {
		batch.Labels = structs.TakeLabels(len(res.Batch))
		for i, orig := range res.Batch {
			batch.Labels[i] = s.labels[orig]
		}
	}
	return batch, nil
}

type embedChunk struct {
	lo, hi int
	data   *graph.EmbeddingTable
}

// Serial runs the fully serialized baseline chain (S → R → K → T) used by
// the existing frameworks (Fig 12a). workers controls sampling threads: 1
// reproduces PyG's single-threaded sampler, GOMAXPROCS the multi-threaded
// variants.
func Serial(full *graph.CSR, features *graph.EmbeddingTable, labels []int32,
	dev *gpusim.Device, batchDsts []graph.VID, samplerCfg sampling.Config,
	format prep.Format, pinned bool) (*prep.Batch, error) {
	return SerialArena(full, features, labels, dev, batchDsts, samplerCfg, format, pinned, nil)
}

// SerialArena is Serial with the batch's host buffers drawn from a
// batch-scoped arena (nil falls back to plain allocation).
func SerialArena(full *graph.CSR, features *graph.EmbeddingTable, labels []int32,
	dev *gpusim.Device, batchDsts []graph.VID, samplerCfg sampling.Config,
	format prep.Format, pinned bool, arena *tensor.Arena) (*prep.Batch, error) {
	return SerialCfg(full, features, labels, dev, batchDsts, samplerCfg,
		prep.Config{Format: format, Pinned: pinned, Arena: arena})
}

// SerialCfg is the serial chain with a full prep.Config (arena, pinning,
// host-only staging).
func SerialCfg(full *graph.CSR, features *graph.EmbeddingTable, labels []int32,
	dev *gpusim.Device, batchDsts []graph.VID, samplerCfg sampling.Config,
	cfg prep.Config) (*prep.Batch, error) {
	sampler := sampling.New(full, samplerCfg)
	return prep.Serial(sampler, features, labels, dev, batchDsts, cfg)
}

// String describes the scheduler configuration.
func (s *Scheduler) String() string {
	return fmt.Sprintf("pipeline.Scheduler{layers=%d fanout=%d format=%v pinned=%v chunk=%d relaxed=%v}",
		s.cfg.Sampler.Layers, s.cfg.Sampler.Fanout, s.cfg.Format, s.cfg.Pinned, s.cfg.ChunkVertices, s.cfg.RelaxContention)
}
