module graphtensor

go 1.21
