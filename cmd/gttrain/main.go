// Command gttrain trains a GNN model on a synthetic dataset under any of
// the framework builds and reports per-batch latency, loss and device
// counters.
//
// Usage:
//
//	gttrain -dataset products -model gcn -framework prepro-gt -batches 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"graphtensor/internal/datasets"
	"graphtensor/internal/dkp"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/multigpu"
)

var kindNames = map[string]frameworks.Kind{
	"dgl":        frameworks.DGL,
	"pyg":        frameworks.PyG,
	"pyg-mt":     frameworks.PyGMT,
	"gnnadvisor": frameworks.GNNAdvisor,
	"salient":    frameworks.SALIENT,
	"base-gt":    frameworks.BaseGT,
	"dynamic-gt": frameworks.DynamicGT,
	"prepro-gt":  frameworks.PreproGT,
}

func main() {
	var (
		dataset = flag.String("dataset", "products", "dataset name")
		model   = flag.String("model", "gcn", "gcn|ngcf|graphsage|gat")
		fwName  = flag.String("framework", "prepro-gt", "framework build")
		batches = flag.Int("batches", 8, "training batches")
		batchSz = flag.Int("batch-size", 300, "dst vertices per batch")
		hidden  = flag.Int("hidden", 16, "hidden dimension")
		layers  = flag.Int("layers", 2, "GNN depth")
		lr      = flag.Float64("lr", 0.05, "SGD learning rate")
		devices = flag.Int("devices", 0, "data-parallel device count (0 = classic single-device engine)")
		perNode = flag.Int("devices-per-node", 0, "devices per node on the hierarchical fabric (0 = flat single-node fabric)")
		shards  = flag.Int("grad-shards", 0, "fixed gradient-shard count (0 = profile default, raised to -devices when below it)")
	)
	flag.Parse()

	kind, ok := kindNames[strings.ToLower(*fwName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "gttrain: unknown framework %q\n", *fwName)
		os.Exit(2)
	}
	ds, err := datasets.Generate(*dataset, datasets.DefaultScale())
	if err != nil {
		fmt.Fprintf(os.Stderr, "gttrain: %v\n", err)
		os.Exit(1)
	}
	opt := frameworks.DefaultOptions()
	opt.Model = *model
	opt.BatchSize = *batchSz
	opt.Hidden = *hidden
	opt.Layers = *layers
	opt.LearningRate = float32(*lr)
	opt.NumDevices = *devices
	opt.DevicesPerNode = *perNode
	opt.GradShards = *shards
	if opt.GradShards == 0 && *devices > multigpu.DefaultShards {
		// Every device needs at least one shard; keep the default's
		// bitwise trajectory when it already covers the device count.
		opt.GradShards = *devices
	}
	tr, err := frameworks.New(kind, ds, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gttrain: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("training %s on %s with %s (%d batches of %d)\n",
		strings.ToUpper(*model), *dataset, kind, *batches, *batchSz)
	if kind == frameworks.DynamicGT || kind == frameworks.PreproGT {
		prof := dkp.ProfileFor(opt.Device)
		fmt.Printf("DKP cost model fitted offline for device class %s (%.1f%% error)\n",
			prof.Class, 100*prof.FitErr)
	}
	start := time.Now()
	for i := 0; i < *batches; i++ {
		st, err := tr.TrainBatch()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gttrain: batch %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("batch %2d  loss %.4f  prep %8v  compute %8v  flops %d\n",
			i, st.Loss, st.Prep.Round(time.Microsecond), st.Compute.Round(time.Microsecond), st.Counters.FLOPs)
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	if g := tr.Group(); g != nil {
		st := g.LastStats()
		fmt.Printf("data-parallel step (last batch): %d devices, imbalance %.2fx, peak dev FLOPs %d, modeled compute %v + comm %v, step %v overlapped (%v serialized, %.0f%% of the scatter hidden)\n",
			st.Devices, st.Imbalance, st.PeakDeviceFLOPs,
			st.MaxDeviceCompute.Round(time.Microsecond), st.CommTime.Round(time.Microsecond),
			st.StepTime.Round(time.Microsecond), st.StepTimeSerial.Round(time.Microsecond),
			st.OverlapEfficiency*100)
		if st.Nodes > 1 {
			fmt.Printf("hierarchical fabric: %d nodes (%d devices/node), node imbalance %.2fx, intra-node comm %v, inter-node comm %v, cross-node payload %.2f MB\n",
				st.Nodes, *perNode, st.NodeImbalance,
				st.IntraNodeTime.Round(time.Microsecond), st.InterNodeTime.Round(time.Microsecond),
				float64(st.CrossNodeBytes)/(1<<20))
		}
		return
	}
	fmt.Printf("kernel phase breakdown:\n%s", tr.Engine.Phases())
}
