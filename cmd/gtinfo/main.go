// Command gtinfo inspects the synthetic datasets: full-graph and
// sampled-subgraph characteristics (Table II) and degree distributions
// (Fig 8).
//
// Usage:
//
//	gtinfo                      # summary of all datasets
//	gtinfo -dataset wiki-talk   # one dataset with degree CDF
package main

import (
	"flag"
	"fmt"
	"os"

	"graphtensor/internal/datasets"
	"graphtensor/internal/graph"
	"graphtensor/internal/sampling"
)

func main() {
	var (
		name   = flag.String("dataset", "", "dataset name (empty = all)")
		batch  = flag.Int("batch", 300, "batch size for the sampled-subgraph stats")
		fanout = flag.Int("fanout", 5, "sampling fanout")
		layers = flag.Int("layers", 2, "sampling depth")
	)
	flag.Parse()

	names := datasets.Names()
	if *name != "" {
		names = []string{*name}
	}
	for _, n := range names {
		ds, err := datasets.Generate(n, datasets.DefaultScale())
		if err != nil {
			fmt.Fprintf(os.Stderr, "gtinfo: %v\n", err)
			os.Exit(1)
		}
		stats := graph.ComputeDegreeStats(ds.Graph.Degrees())
		fmt.Printf("%-12s vertices=%d edges=%d dim=%d classes=%d degree(mean=%.2f std=%.2f max=%d)\n",
			n, ds.NumVertices(), ds.NumEdges(), ds.FeatureDim, ds.Spec.OutDim,
			stats.Mean, stats.StdDev, stats.Max)

		cfg := sampling.DefaultConfig()
		cfg.Fanout = *fanout
		cfg.Layers = *layers
		res := sampling.New(ds.Graph, cfg).Sample(ds.BatchDsts(*batch, 1))
		hop := res.ForLayer(1)
		fmt.Printf("%-12s sampled: vertices=%d edges=%d dsts=%d frontier=%v\n",
			"", res.NumVertices(), len(hop.SrcOrig), hop.NumDst, res.FrontierSizes)

		if *name != "" {
			fmt.Println("degree CDF (original graph):")
			printCDF(stats)
		}
	}
}

func printCDF(stats graph.DegreeStats) {
	// Print ~12 evenly spaced CDF points.
	n := len(stats.CDFDegrees)
	step := n / 12
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		fmt.Printf("  deg<=%-8d %6.2f%%\n", stats.CDFDegrees[i], 100*stats.CDFValues[i])
	}
	fmt.Printf("  deg<=%-8d %6.2f%%\n", stats.CDFDegrees[n-1], 100*stats.CDFValues[n-1])
}
