package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// Micro-benchmark capture: `gtbench -micro` runs the repository's hot-path
// benchmarks (`go test -bench -benchmem` at the module root), parses the
// ns/op, B/op and allocs/op columns, and writes a BENCH_<n>.json snapshot.
// Successive snapshots (BENCH_1.json, BENCH_2.json, ...) form the
// performance trajectory of the substrate; compare them with any JSON
// diff, or benchstat on the raw `go test` output.

// defaultMicroBench selects the substrate hot paths (not the full
// paper-figure regenerations, which dominate wall time).
const defaultMicroBench = "BenchmarkMatMul$|BenchmarkMatMulParallel$|BenchmarkNAPAForward|BenchmarkGraphApproachForwardNGCF$|BenchmarkDLApproachForwardNGCF$|BenchmarkCOOToCSR$|BenchmarkNeighborSampling$|BenchmarkPrepareBatch$|BenchmarkServeQuery$|BenchmarkServeThroughput$|BenchmarkServeContention$|BenchmarkTrainBatchPreproGT$|BenchmarkTrainEpoch$|BenchmarkMultiGPUTrainBatch$|BenchmarkCountResident$|BenchmarkPolicyDecide$"

// benchResult is one benchmark's aggregated samples.
type benchResult struct {
	Name        string    `json:"name"`
	Samples     int       `json:"samples"`
	NsPerOp     []float64 `json:"ns_per_op"`
	NsPerOpBest float64   `json:"ns_per_op_best"`
	NsPerOpMean float64   `json:"ns_per_op_mean"`
	BytesPerOp  int64     `json:"bytes_per_op"`
	AllocsPerOp int64     `json:"allocs_per_op"`
}

// benchFile is the BENCH_<n>.json schema.
type benchFile struct {
	Schema     string        `json:"schema"`
	CreatedUTC string        `json:"created_utc"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Count      int           `json:"count"`
	Bench      string        `json:"bench_regexp"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchLine tolerates custom metrics between ns/op and B/op (e.g.
// BenchmarkServeThroughput's queries/sec from b.ReportMetric).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.e+]+ [\w/]+)*?\s+(\d+) B/op\s+(\d+) allocs/op`)

// runMicro executes the micro-benchmark suite and writes outPath. It must
// run from the module root (where go.mod lives).
func runMicro(benchRe string, count int, outPath string) error {
	if _, err := os.Stat("go.mod"); err != nil {
		return fmt.Errorf("gtbench -micro must run from the repository root (go.mod not found): %w", err)
	}
	// The module root holds the end-to-end benchmarks; internal/cache holds
	// the epoch-snapshot read path whose zero-alloc floor the snapshot
	// ratchets.
	// -timeout scales with -count: the default 10m cap kills deep captures
	// (the snapshot records min-over-samples, which needs count >= ~20 to
	// converge on the concurrency-heavy benchmarks).
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem",
		"-count", strconv.Itoa(count), "-timeout", "120m", ".", "./internal/cache"}
	fmt.Fprintf(os.Stderr, "gtbench: go %v\n", args)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test -bench failed: %w\n%s", err, outBytes)
	}

	byName := map[string]*benchResult{}
	var order []string
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(outBytes), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		bytesOp, _ := strconv.ParseInt(m[3], 10, 64)
		allocsOp, _ := strconv.ParseInt(m[4], 10, 64)
		r := byName[m[1]]
		if r == nil {
			r = &benchResult{Name: m[1], BytesPerOp: bytesOp, AllocsPerOp: allocsOp}
			byName[m[1]] = r
			order = append(order, m[1])
		}
		r.NsPerOp = append(r.NsPerOp, ns)
		if bytesOp < r.BytesPerOp {
			r.BytesPerOp = bytesOp
		}
		if allocsOp < r.AllocsPerOp {
			r.AllocsPerOp = allocsOp
		}
	}
	if len(order) == 0 {
		return fmt.Errorf("no benchmark lines matched %q in go test output", benchRe)
	}
	sort.Strings(order)

	f := benchFile{
		Schema:     "graphtensor-bench/v1",
		CreatedUTC: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Count:      count,
		Bench:      benchRe,
	}
	for _, name := range order {
		r := byName[name]
		r.Samples = len(r.NsPerOp)
		best, sum := r.NsPerOp[0], 0.0
		for _, v := range r.NsPerOp {
			if v < best {
				best = v
			}
			sum += v
		}
		r.NsPerOpBest = best
		r.NsPerOpMean = sum / float64(len(r.NsPerOp))
		f.Benchmarks = append(f.Benchmarks, *r)
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%-36s %14s %14s %10s %10s\n", "benchmark", "best ns/op", "mean ns/op", "B/op", "allocs/op")
	for _, r := range f.Benchmarks {
		fmt.Printf("%-36s %14.0f %14.0f %10d %10d\n", r.Name, r.NsPerOpBest, r.NsPerOpMean, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("wrote %s (%d benchmarks × %d samples)\n", outPath, len(f.Benchmarks), count)
	return nil
}
