// Command gtbench regenerates the paper's tables and figures, and captures
// hot-path micro-benchmark snapshots.
//
// Usage:
//
//	gtbench -exp fig15            # one experiment
//	gtbench -exp all              # every experiment (slow)
//	gtbench -list                 # list experiment ids
//	gtbench -exp fig19 -quick     # reduced dataset set and batch count
//	gtbench -micro                # run micro-benchmarks, write BENCH_1.json
//	gtbench -micro -count 10 -out BENCH_2.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphtensor/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (or \"all\")")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quick   = flag.Bool("quick", false, "reduced datasets and batch counts")
		batches = flag.Int("batches", 0, "override per-measurement batch count")
		micro   = flag.Bool("micro", false, "run hot-path micro-benchmarks and write a BENCH json snapshot")
		count   = flag.Int("count", 5, "benchmark repetitions per micro-benchmark (-micro)")
		outPath = flag.String("out", "BENCH_1.json", "output path for the micro-benchmark snapshot (-micro)")
		benchRe = flag.String("bench", defaultMicroBench, "benchmark name regexp (-micro)")
	)
	flag.Parse()

	if *micro {
		if err := runMicro(*benchRe, *count, *outPath); err != nil {
			fmt.Fprintf(os.Stderr, "gtbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-10s %s\n", id, experiments.Title(id))
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Quick = *quick
	cfg.Batches = *batches

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		t0 := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gtbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("================ %s — %s ================\n", res.ID, res.Title)
		fmt.Print(res.Text)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}
