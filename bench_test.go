// Package graphtensor's repository-level benchmarks: one testing.B per
// table and figure of the paper's evaluation. Each benchmark regenerates
// its experiment at quick scale so `go test -bench` stays tractable; the
// full rows/series are produced by `cmd/gtbench -exp <id>`.
//
// Run all:
//
//	go test -bench=. -benchmem ./...
package graphtensor

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"graphtensor/internal/cache"
	"graphtensor/internal/datasets"
	"graphtensor/internal/dkp"
	"graphtensor/internal/experiments"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/multigpu"
	"graphtensor/internal/pipeline"
	"graphtensor/internal/sampling"
	"graphtensor/internal/serve"
	"graphtensor/internal/tensor"
)

func benchConfig() experiments.Config {
	c := experiments.DefaultConfig()
	c.Quick = true
	c.Batches = 1
	return c
}

// runExp benchmarks one experiment's regeneration.
func runExp(b *testing.B, id string) {
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Datasets(b *testing.B)       { runExp(b, "table2") }
func BenchmarkTable3Comparison(b *testing.B)     { runExp(b, "table3") }
func BenchmarkTable1CostModelFit(b *testing.B)   { runExp(b, "table1") }
func BenchmarkFig6aMemoryBloat(b *testing.B)     { runExp(b, "fig6a") }
func BenchmarkFig6bCacheBloat(b *testing.B)      { runExp(b, "fig6b") }
func BenchmarkFig8DegreeStats(b *testing.B)      { runExp(b, "fig8") }
func BenchmarkFig11bReduction(b *testing.B)      { runExp(b, "fig11b") }
func BenchmarkFig12aBreakdown(b *testing.B)      { runExp(b, "fig12a") }
func BenchmarkFig12bResources(b *testing.B)      { runExp(b, "fig12b") }
func BenchmarkFig14Contention(b *testing.B)      { runExp(b, "fig14") }
func BenchmarkFig15Training(b *testing.B)        { runExp(b, "fig15") }
func BenchmarkFig16KernelBreakdown(b *testing.B) { runExp(b, "fig16") }
func BenchmarkFig17NAPAResources(b *testing.B)   { runExp(b, "fig17") }
func BenchmarkFig18DKPImpact(b *testing.B)       { runExp(b, "fig18") }
func BenchmarkFig19EndToEnd(b *testing.B)        { runExp(b, "fig19") }
func BenchmarkFig20Timeline(b *testing.B)        { runExp(b, "fig20") }

// --- Micro-benchmarks of the hot paths, for profiling the substrate ---

// benchBipartite builds a sampled-subgraph-shaped BCSR for kernel benches.
func benchBipartite(nDst, nSrc, fanout, dim int) (*kernels.Graphs, *tensor.Matrix) {
	rng := tensor.NewRNG(1)
	coo := &graph.BCOO{NumDst: nDst, NumSrc: nSrc}
	for d := 0; d < nDst; d++ {
		coo.Src = append(coo.Src, graph.VID(d))
		coo.Dst = append(coo.Dst, graph.VID(d))
		for i := 0; i < fanout; i++ {
			coo.Src = append(coo.Src, graph.VID(rng.Intn(nSrc)))
			coo.Dst = append(coo.Dst, graph.VID(d))
		}
	}
	csr, _ := graph.BCOOToBCSR(coo)
	return &kernels.Graphs{CSR: csr, CSC: graph.BCSRToBCSC(csr)}, tensor.Random(nSrc, dim, 1, rng)
}

func benchStrategyForward(b *testing.B, s kernels.Strategy, modes kernels.Modes) {
	g, x := benchBipartite(500, 900, 6, 64)
	dev := gpusim.NewDevice(gpusim.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := kernels.NewCtx(dev)
		gg := &kernels.Graphs{CSR: g.CSR, CSC: g.CSC}
		xd, _ := kernels.WrapDeviceMatrix(dev, x.Clone(), "x")
		out, err := s.Forward(ctx, gg, xd, modes)
		if err != nil {
			b.Fatal(err)
		}
		out.Free()
		xd.Free()
	}
}

func BenchmarkNAPAForwardGCN(b *testing.B) {
	benchStrategyForward(b, kernels.NAPA{}, kernels.GCNModes())
}
func BenchmarkNAPAForwardNGCF(b *testing.B) {
	benchStrategyForward(b, kernels.NAPA{}, kernels.NGCFModes())
}
func BenchmarkGraphApproachForwardNGCF(b *testing.B) {
	benchStrategyForward(b, kernels.GraphApproach{}, kernels.NGCFModes())
}
func BenchmarkDLApproachForwardNGCF(b *testing.B) {
	benchStrategyForward(b, kernels.DLApproach{}, kernels.NGCFModes())
}

func BenchmarkMatMul(b *testing.B) {
	rng := tensor.NewRNG(2)
	x := tensor.Random(512, 128, 1, rng)
	w := tensor.Random(128, 64, 1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMul(x, w)
	}
}

// BenchmarkMatMulParallel measures the pooled parallel GEMM path: the same
// shape as BenchmarkMatMul dispatched onto the persistent worker pool at 8
// workers (forced, so the scaling is visible even on small CI boxes). The
// destination-passing form keeps the loop allocation-free.
func BenchmarkMatMulParallel(b *testing.B) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	rng := tensor.NewRNG(2)
	x := tensor.Random(512, 128, 1, rng)
	w := tensor.Random(128, 64, 1, rng)
	dst := tensor.Get(512, 64)
	defer tensor.Put(dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMulInto(dst, x, w)
	}
}

func BenchmarkCOOToCSR(b *testing.B) {
	rng := tensor.NewRNG(3)
	n, e := 5000, 30000
	coo := &graph.COO{NumVertices: n, Src: make([]graph.VID, e), Dst: make([]graph.VID, e)}
	for i := 0; i < e; i++ {
		coo.Src[i] = graph.VID(rng.Intn(n))
		coo.Dst[i] = graph.VID(rng.Intn(n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = graph.COOToCSR(coo)
	}
}

func BenchmarkNeighborSampling(b *testing.B) {
	ds, _ := datasets.Generate("products", datasets.DefaultScale())
	cfg := sampling.DefaultConfig()
	sampler := sampling.New(ds.Graph, cfg)
	batch := ds.BatchDsts(300, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sampler.Sample(batch)
	}
}

func BenchmarkTrainBatchPreproGT(b *testing.B) {
	ds, _ := datasets.Generate("products", datasets.DefaultScale())
	opt := frameworks.DefaultOptions()
	tr, _ := frameworks.New(frameworks.PreproGT, ds, opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TrainBatch(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiGPUTrainBatch measures one data-parallel training step of
// the DeviceGroup engine at 1–8 flat simulated devices plus a 16-device
// hierarchical group (4 nodes of 4): batch partitioning into edge-balanced
// gradient shards (node-aware on the hierarchical fabric), per-device
// forward+backward on the worker pool, modeled all-reduce on the configured
// fabric, deterministic optimizer step. The per-device arenas recycle all
// device allocations, so allocs/op tracks the host-side steady state.
func BenchmarkMultiGPUTrainBatch(b *testing.B) {
	ds, err := datasets.Generate("products", datasets.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name          string
		devs, perNode int
	}{
		{"devs=1", 1, 0},
		{"devs=2", 2, 0},
		{"devs=4", 4, 0},
		{"devs=8", 8, 0},
		// The multi-node step: 16 devices as 4 nodes of 4 over the
		// hierarchical fabric (node-aware shard assignment, two-tier
		// all-reduce, cross-node scatter) — its allocs/op ratchets the
		// node-assignment scratch reuse.
		{"devs=16/nodes=4", 16, 4},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			opt := frameworks.DefaultOptions()
			opt.NumDevices = tc.devs
			opt.DevicesPerNode = tc.perNode
			if tc.devs > multigpu.DefaultShards {
				opt.GradShards = tc.devs
			}
			tr, err := frameworks.New(frameworks.BaseGT, ds, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.TrainBatch(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrepareBatch is the producer-only benchmark: sample → reindex/
// translate → localize into gradient shards, through one warm prefetch-ring
// slot (arena + structure pool), with no compute and no device transfer.
// Its allocs/op is the steady-state allocation floor of the producer-arena
// discipline — a small constant independent of how many batches ran before.
func BenchmarkPrepareBatch(b *testing.B) {
	ds, err := datasets.Generate("products", datasets.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	opt := frameworks.DefaultOptions()
	opt.NumDevices = 2 // host-only staging + shard localization, the group's producer path
	tr, err := frameworks.New(frameworks.PreproGT, ds, opt)
	if err != nil {
		b.Fatal(err)
	}
	slot := pipeline.NewSlot()
	dsts := ds.BatchDsts(opt.BatchSize, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := tr.PrepareTrainInto(dsts, slot)
		if err != nil {
			b.Fatal(err)
		}
		batch.Release()
		slot.Recycle(batch)
	}
}

// BenchmarkServeQuery is the serving fast path's allocation/latency floor:
// one warm coalesced batch (256 dsts) through PrepareInto on a warm slot +
// FWP-only inference, no gradients and no backward workspaces. Its
// allocs/op is gated by the benchdiff alloc ratchet, like
// BenchmarkPrepareBatch.
func BenchmarkServeQuery(b *testing.B) {
	ds, err := datasets.Generate("products", datasets.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	tr, err := frameworks.New(frameworks.PreproGT, ds, frameworks.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	slot := pipeline.NewSlot()
	dsts := ds.BatchDsts(256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits, batch, err := tr.Serve(dsts, slot)
		if err != nil {
			b.Fatal(err)
		}
		logits.Free()
		batch.Release()
		slot.Recycle(batch)
	}
}

// BenchmarkServeThroughput drives the concurrent serving engine end to end:
// 64 outstanding queries of 16 dsts per op, coalesced under the default
// size/deadline policy and drained by 2 replicas with a 10% degree cache.
// The reported queries/sec metric is the engine's steady-state throughput.
func BenchmarkServeThroughput(b *testing.B) {
	ds, err := datasets.Generate("products", datasets.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	tr, err := frameworks.New(frameworks.PreproGT, ds, frameworks.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := serve.DefaultConfig()
	cfg.Replicas = 2
	// One admission shard pins the historical batch composition (shard
	// count changes how the 64 outstanding queries coalesce, and with it
	// the per-batch fixed allocs this snapshot ratchets); the sharded
	// front end is measured by BenchmarkServeContention.
	cfg.Shards = 1
	cfg.MaxDelay = 500 * time.Microsecond
	cfg.Cache = cache.New(ds.NumVertices()/10, cache.Degree, ds.Graph)
	srv, err := serve.NewServer(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	const queries, querySize = 64, 16
	dsts := make([][]graph.VID, queries)
	outs := make([][]float32, queries)
	for q := range dsts {
		dsts[q] = ds.BatchDsts(querySize, uint64(q+1))
		outs[q] = make([]float32, querySize*srv.OutDim())
	}
	tks := make([]*serve.Ticket, queries)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		for q := range dsts {
			var err error
			tks[q], err = srv.Submit(dsts[q], outs[q])
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, tk := range tks {
			if err := tk.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(queries*b.N)/time.Since(start).Seconds(), "queries/sec")
}

// BenchmarkServeContention stresses the admission front end: 256
// outstanding 4-dst queries per op — small batches, so fixed per-query
// admission cost dominates — submitted in bulk through SubmitMany and
// routed over the sharded admission path (one shard per replica). With a
// single coalescing goroutine and a mutex-guarded stats path this workload
// serialized on admission; sharded admission + lock-free stats should let
// throughput scale with the replica count.
func BenchmarkServeContention(b *testing.B) {
	ds, err := datasets.Generate("products", datasets.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	tr, err := frameworks.New(frameworks.PreproGT, ds, frameworks.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	const queries, querySize = 256, 4
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			cfg := serve.DefaultConfig()
			cfg.Replicas = replicas
			cfg.MaxBatch = 64
			cfg.MaxDelay = 200 * time.Microsecond
			cfg.Cache = cache.New(ds.NumVertices()/10, cache.Degree, ds.Graph)
			srv, err := serve.NewServer(tr, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			dsts := make([][]graph.VID, queries)
			outs := make([][]float32, queries)
			for q := range dsts {
				dsts[q] = ds.BatchDsts(querySize, uint64(q+1))
				outs[q] = make([]float32, querySize*srv.OutDim())
			}
			tks := make([]*serve.Ticket, queries)
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := srv.SubmitMany(dsts, outs, tks); err != nil {
					b.Fatal(err)
				}
				for _, tk := range tks {
					if err := tk.Wait(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(queries*b.N)/time.Since(start).Seconds(), "queries/sec")
		})
	}
}

// BenchmarkTrainEpoch is the steady-state end-to-end benchmark: 8 batches
// per op through the depth-N prefetch ring (preprocessing of batch t+1
// overlapping compute of batch t, arena-recycled buffers), the discipline
// train.Driver runs production epochs under.
func BenchmarkTrainEpoch(b *testing.B) {
	ds, err := datasets.Generate("products", datasets.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	opt := frameworks.DefaultOptions()
	tr, err := frameworks.New(frameworks.PreproGT, ds, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.TrainEpoch(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyDecide is the placement policy's hot path, paid once per
// rearrangeable layer per forward/backward pass: a memoized shape-keyed
// lookup that must cost one hash and zero locks — and hold at exactly 0
// allocs/op (ratcheted in CI).
func BenchmarkPolicyDecide(b *testing.B) {
	pol := dkp.NewPolicy(dkp.ProfileFor(gpusim.DefaultConfig()))
	shapes := dkp.DefaultSweep()
	for _, d := range shapes {
		pol.Decide(d, false, 0) // warm the memo
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Decide(shapes[i%len(shapes)], false, 0)
	}
}
