#!/usr/bin/env sh
# Capture a hot-path micro-benchmark snapshot into the next BENCH_<n>.json.
#
# The output file auto-numbers: existing BENCH_<n>.json snapshots are
# scanned and the next free index is used, so successive captures extend
# the perf trajectory without manual bookkeeping. After the capture the
# benchdiff command comparing against the previous snapshot is printed.
#
# Usage (from the repository root):
#   scripts/bench.sh                  # writes the next BENCH_<n>.json, 5 samples
#   OUT=mybench.json scripts/bench.sh # explicit output path (no auto-numbering)
#   COUNT=10 scripts/bench.sh         # more samples per benchmark
set -eu
cd "$(dirname "$0")/.."

n=1
while [ -e "BENCH_$n.json" ]; do
  n=$((n + 1))
done
out="${OUT:-BENCH_$n.json}"

go run ./cmd/gtbench -micro -count "${COUNT:-5}" -out "$out"

prev=$((n - 1))
if [ "$prev" -ge 1 ] && [ -e "BENCH_$prev.json" ]; then
  echo ""
  echo "compare against the previous snapshot with:"
  echo "  go run ./scripts/benchdiff BENCH_$prev.json $out"
fi
