#!/usr/bin/env sh
# Capture a hot-path micro-benchmark snapshot into BENCH_<n>.json.
#
# Usage (from the repository root):
#   scripts/bench.sh                  # writes BENCH_1.json with 5 samples
#   OUT=BENCH_2.json scripts/bench.sh # next point on the perf trajectory
#   COUNT=10 scripts/bench.sh         # more samples per benchmark
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/gtbench -micro -count "${COUNT:-5}" -out "${OUT:-BENCH_1.json}"
