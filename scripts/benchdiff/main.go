// Command benchdiff compares two BENCH_<n>.json snapshots produced by
// `gtbench -micro` / scripts/bench.sh and prints the per-benchmark delta in
// best ns/op, B/op and allocs/op. It exits non-zero when any benchmark
// present in both snapshots regressed beyond a gate, making it usable as a
// CI gate on the perf trajectory. Two gates apply:
//
//   - ns/op: a regression of more than -threshold percent (default 15%).
//   - allocs/op: growth beyond max(-allocslack, -allocnoise percent of the
//     old count) — the allocation disciplines (arena, worker pool, device
//     arena) are a ratcheted invariant, so new steady-state allocations fail
//     the diff. The absolute slack (default 2) keeps near-zero floors exact;
//     the proportional term (default 0.5%) exists because the concurrent
//     benchmarks (server contention, multi-device training) run thousands of
//     allocs/op and goroutine scheduling shifts that count by a handful
//     between otherwise identical runs. A real regression scales with the
//     per-op work (one alloc per query/shard/batch adds tens to hundreds),
//     so it still trips the proportional gate. Benchmarks that legitimately
//     change shape get headroom via a larger -allocslack, not by dropping
//     the gate.
//
// Usage:
//
//	go run ./scripts/benchdiff BENCH_1.json BENCH_2.json
//	go run ./scripts/benchdiff -threshold 10 -allocslack 0 BENCH_1.json BENCH_2.json
//	go run ./scripts/benchdiff -smoke BENCH_1.json BENCH_2.json       # never fails
//	go run ./scripts/benchdiff -allocsonly BENCH_1.json BENCH_2.json  # gate allocs/op only
//
// -smoke prints the comparison but always exits 0. -allocsonly keeps the
// allocs/op gate hard but prints ns/op deltas without gating them: CI runs
// it because allocs/op is machine-independent (the committed snapshots come
// from a different machine class than the runner), so the pooled
// steady-state allocation floor stays a ratcheted invariant on every push
// while wall-clock noise cannot fail unrelated changes. Local runs keep
// both hard gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOpBest float64 `json:"ns_per_op_best"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchFile struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func load(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "graphtensor-bench/v1" {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, f.Schema)
	}
	return &f, nil
}

func main() {
	threshold := flag.Float64("threshold", 15, "max allowed ns/op regression in percent before failing")
	allocSlack := flag.Int64("allocslack", 2, "max allowed allocs/op growth before failing (small allowance for benchmarks that legitimately change)")
	allocNoise := flag.Float64("allocnoise", 0.5, "scheduler-noise allowance in percent of old allocs/op; the effective slack per benchmark is max(allocslack, ceil(allocnoise*old/100))")
	smoke := flag.Bool("smoke", false, "print the diff but always exit 0 (CI smoke mode)")
	allocsOnly := flag.Bool("allocsonly", false, "gate allocs/op only; ns/op deltas are printed but never fail (for CI, where snapshots come from a different machine class)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-allocslack n] [-smoke] [-allocsonly] OLD.json NEW.json")
		os.Exit(2)
	}
	oldF, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newF, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldBy := map[string]benchResult{}
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b
	}

	fmt.Printf("%-38s %14s %14s %9s %12s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns/op", "Δallocs/op", "ΔB/op")
	regressed := 0
	compared := 0
	for _, nb := range newF.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("%-38s %14s %14.0f %9s %12d %12d  (new)\n",
				nb.Name, "-", nb.NsPerOpBest, "-", nb.AllocsPerOp, nb.BytesPerOp)
			continue
		}
		delete(oldBy, nb.Name)
		compared++
		pct := (nb.NsPerOpBest - ob.NsPerOpBest) / ob.NsPerOpBest * 100
		mark := ""
		if pct > *threshold && !*allocsOnly {
			mark = "  REGRESSION"
		}
		slack := *allocSlack
		if prop := int64(math.Ceil(*allocNoise * float64(ob.AllocsPerOp) / 100)); prop > slack {
			slack = prop
		}
		if nb.AllocsPerOp > ob.AllocsPerOp+slack {
			mark += "  ALLOC-REGRESSION"
		}
		if mark != "" {
			regressed++
		}
		fmt.Printf("%-38s %14.0f %14.0f %8.1f%% %12d %12d%s\n",
			nb.Name, ob.NsPerOpBest, nb.NsPerOpBest, pct,
			nb.AllocsPerOp-ob.AllocsPerOp, nb.BytesPerOp-ob.BytesPerOp, mark)
	}
	for name := range oldBy {
		fmt.Printf("%-38s  (dropped from new snapshot)\n", name)
	}
	fmt.Printf("%d benchmarks compared, %d regressed (ns/op gate %.0f%%, allocs/op slack max(%d, %.2g%%))\n",
		compared, regressed, *threshold, *allocSlack, *allocNoise)
	if regressed > 0 && !*smoke {
		os.Exit(1)
	}
}
